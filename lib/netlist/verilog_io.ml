exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)

type token =
  | Ident of string
  | Punct of char (* ( ) , ; = *)
  | Literal of bool (* 1'b0 / 1'b1 *)

let tokenize text =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length text in
  let i = ref 0 in
  let peek k = if !i + k < n then Some text.[!i + k] else None in
  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '$' in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if text.[!i] = '\n' then incr line;
        if text.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail !line "unterminated block comment"
    end
    else if c = '\\' then begin
      (* Escaped identifier: up to the next whitespace. *)
      let start = !i + 1 in
      let j = ref start in
      while !j < n && not (List.mem text.[!j] [ ' '; '\t'; '\n'; '\r' ]) do
        incr j
      done;
      if !j = start then fail !line "empty escaped identifier";
      tokens := (Ident (String.sub text start (!j - start)), !line) :: !tokens;
      i := !j
    end
    else if c = '1' && peek 1 = Some '\'' && (peek 2 = Some 'b' || peek 2 = Some 'B')
    then begin
      match peek 3 with
      | Some '0' ->
        tokens := (Literal false, !line) :: !tokens;
        i := !i + 4
      | Some '1' ->
        tokens := (Literal true, !line) :: !tokens;
        i := !i + 4
      | _ -> fail !line "bad literal (only 1'b0 / 1'b1 supported)"
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      tokens := (Ident (String.sub text start (!i - start)), !line) :: !tokens
    end
    else if List.mem c [ '('; ')'; ','; ';'; '=' ] then begin
      tokens := (Punct c, !line) :: !tokens;
      incr i
    end
    else fail !line "unexpected character %C" c
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

type stmt =
  | S_decl of [ `Input | `Output | `Wire ] * string list
  | S_assign of string * bool
  | S_gate of Gate.kind * string list (* out :: ins *)

let primitive_of_name = function
  | "and" -> Some Gate.And
  | "nand" -> Some Gate.Nand
  | "or" -> Some Gate.Or
  | "nor" -> Some Gate.Nor
  | "xor" -> Some Gate.Xor
  | "xnor" -> Some Gate.Xnor
  | "not" -> Some Gate.Not
  | "buf" -> Some Gate.Buf
  | _ -> None

let parse_tokens tokens =
  let rest = ref tokens in
  let line () = match !rest with (_, l) :: _ -> l | [] -> 0 in
  let next () =
    match !rest with
    | t :: tl ->
      rest := tl;
      t
    | [] -> fail 0 "unexpected end of file"
  in
  let expect_punct c =
    match next () with
    | Punct p, _ when p = c -> ()
    | _, l -> fail l "expected %C" c
  in
  let expect_ident () =
    match next () with
    | Ident s, _ -> s
    | _, l -> fail l "expected identifier"
  in
  let expect_keyword kw =
    let l = line () in
    let s = expect_ident () in
    if s <> kw then fail l "expected %S" kw
  in
  (* Comma-separated identifiers terminated by [stop]. *)
  let ident_list stop =
    let rec go acc =
      let id = expect_ident () in
      match next () with
      | Punct ',', _ -> go (id :: acc)
      | Punct p, _ when p = stop -> List.rev (id :: acc)
      | _, l -> fail l "expected ',' or %C" stop
    in
    go []
  in
  expect_keyword "module";
  let _module_name = expect_ident () in
  expect_punct '(';
  let _ports = ident_list ')' in
  expect_punct ';';
  let stmts = ref [] in
  let finished = ref false in
  while not !finished do
    let l = line () in
    match next () with
    | Ident "endmodule", _ -> finished := true
    | Ident "input", _ -> stmts := (l, S_decl (`Input, ident_list ';')) :: !stmts
    | Ident "output", _ -> stmts := (l, S_decl (`Output, ident_list ';')) :: !stmts
    | Ident "wire", _ -> stmts := (l, S_decl (`Wire, ident_list ';')) :: !stmts
    | Ident "assign", _ ->
      let name = expect_ident () in
      expect_punct '=';
      let value =
        match next () with
        | Literal b, _ -> b
        | _, l2 -> fail l2 "assign supports only 1'b0 / 1'b1"
      in
      expect_punct ';';
      stmts := (l, S_assign (name, value)) :: !stmts
    | Ident prim, _ -> (
      match primitive_of_name prim with
      | None -> fail l "unsupported construct %S (structural subset only)" prim
      | Some kind ->
        (* Optional instance name before the port list. *)
        let () =
          match !rest with
          | (Ident _, _) :: (Punct '(', _) :: _ ->
            ignore (next ())
          | _ -> ()
        in
        expect_punct '(';
        let ports = ident_list ')' in
        expect_punct ';';
        if List.length ports < 2 then fail l "primitive needs an output and inputs";
        stmts := (l, S_gate (kind, ports)) :: !stmts)
    | _, l2 -> fail l2 "unexpected token"
  done;
  List.rev !stmts

let build stmts =
  (* Collect declarations and drivers, then assemble a Netlist. *)
  let order = ref [] in
  let ids = Hashtbl.create 64 in
  let declare name =
    if not (Hashtbl.mem ids name) then begin
      Hashtbl.add ids name (Hashtbl.length ids);
      order := name :: !order
    end
  in
  let inputs = Hashtbl.create 16 in
  let outputs = ref [] in
  List.iter
    (fun (line, s) ->
      match s with
      | S_decl (`Input, names) ->
        List.iter
          (fun nm ->
            if Hashtbl.mem inputs nm then fail line "net %S declared input twice" nm;
            Hashtbl.add inputs nm ();
            declare nm)
          names
      | S_decl (`Output, names) ->
        List.iter
          (fun nm ->
            declare nm;
            outputs := nm :: !outputs)
          names
      | S_decl (`Wire, names) -> List.iter declare names
      | S_assign (name, _) -> declare name
      | S_gate (_, ports) -> List.iter declare ports)
    stmts;
  let n = Hashtbl.length ids in
  let names = Array.of_list (List.rev !order) in
  let kinds = Array.make n Gate.Input in
  let fanins = Array.make n [||] in
  let driven = Array.make n false in
  Array.iteri (fun i nm -> if Hashtbl.mem inputs nm then driven.(i) <- true) names;
  let id line nm =
    match Hashtbl.find_opt ids nm with
    | Some i -> i
    | None -> fail line "undeclared net %S" nm
  in
  let drive line nm kind fanin =
    let i = id line nm in
    if driven.(i) then fail line "net %S driven twice" nm;
    driven.(i) <- true;
    kinds.(i) <- kind;
    fanins.(i) <- fanin
  in
  List.iter
    (fun (line, s) ->
      match s with
      | S_decl _ -> ()
      | S_assign (name, v) -> drive line name (Gate.Const v) [||]
      | S_gate (kind, out :: ins) ->
        let kind =
          (* Verilog's and/or/... are n-ary; with one input they act as
             buf/not is not standard, reject. *)
          match (kind, List.length ins) with
          | (Gate.Not | Gate.Buf), 1 -> kind
          | (Gate.Not | Gate.Buf), _ -> fail line "not/buf take exactly one input"
          | _, k when k >= 2 -> kind
          | _ -> fail line "n-ary primitive needs >= 2 inputs"
        in
        drive line out kind (Array.of_list (List.map (id line) ins))
      | S_gate (_, []) -> assert false)
    stmts;
  Array.iteri
    (fun i nm -> if not driven.(i) then fail 0 "net %S is never driven" nm)
    names;
  (* [outputs] was accumulated reversed; rev_map restores order. *)
  let pos = Array.of_list (List.rev_map (fun nm -> id 0 nm) !outputs) in
  try Netlist.make ~names ~kinds ~fanins ~pos
  with Invalid_argument msg -> raise (Parse_error (0, msg))

let parse_string text = build (parse_tokens (tokenize text))

let parse_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse_string text

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let is_plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
       s
  && primitive_of_name s = None
  && not (List.mem s [ "module"; "endmodule"; "input"; "output"; "wire"; "assign" ])

let emit_name s = if is_plain_ident s then s else "\\" ^ s ^ " "

let to_string ?(module_name = "top") t =
  let buf = Buffer.create 4096 in
  let name n = emit_name (Netlist.name t n) in
  Array.iter
    (fun po ->
      if Netlist.is_pi t po then
        invalid_arg "Verilog_io.to_string: a primary input is also an output")
    (Netlist.pos t);
  let pis = Array.to_list (Array.map name (Netlist.pis t)) in
  let pos = Array.to_list (Array.map name (Netlist.pos t)) in
  Printf.bprintf buf "module %s (%s);\n" module_name (String.concat ", " (pis @ pos));
  if pis <> [] then Printf.bprintf buf "  input %s;\n" (String.concat ", " pis);
  if pos <> [] then Printf.bprintf buf "  output %s;\n" (String.concat ", " pos);
  let wires = ref [] in
  Netlist.iter_nets t (fun n ->
      if (not (Netlist.is_pi t n)) && not (Netlist.is_po t n) then
        wires := name n :: !wires);
  (match List.rev !wires with
  | [] -> ()
  | ws -> Printf.bprintf buf "  wire %s;\n" (String.concat ", " ws));
  Array.iter
    (fun n ->
      match Netlist.kind t n with
      | Gate.Input -> ()
      | Gate.Const b -> Printf.bprintf buf "  assign %s = 1'b%d;\n" (name n) (Bool.to_int b)
      | kind ->
        let ports =
          name n :: Array.to_list (Array.map name (Netlist.fanin t n))
        in
        Printf.bprintf buf "  %s g%d (%s);\n"
          (String.lowercase_ascii (Gate.name kind))
          n
          (String.concat ", " ports))
    (Netlist.topo_order t);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file ?module_name path t =
  let oc = open_out path in
  output_string oc (to_string ?module_name t);
  close_out oc
