exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

type stmt =
  | S_input of string
  | S_output of string
  | S_def of string * string * string list (* lhs, kind mnemonic, args *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '[' || c = ']' || c = '.' || c = '-'

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\r') do incr i done;
  while !j >= !i && (s.[!j] = ' ' || s.[!j] = '\t' || s.[!j] = '\r') do decr j done;
  String.sub s !i (!j - !i + 1)

(* "KIND(a, b, c)" -> (KIND, [a; b; c]) *)
let parse_call line s =
  match String.index_opt s '(' with
  | None -> fail line "expected '(' in %S" s
  | Some lp ->
    if s.[String.length s - 1] <> ')' then fail line "expected ')' in %S" s;
    let mnemonic = strip (String.sub s 0 lp) in
    let inner = String.sub s (lp + 1) (String.length s - lp - 2) in
    let args =
      String.split_on_char ',' inner |> List.map strip
      |> List.filter (fun a -> a <> "")
    in
    List.iter
      (fun a ->
        String.iter
          (fun c -> if not (is_ident_char c) then fail line "bad identifier %S" a)
          a)
      args;
    (mnemonic, args)

let parse_line lineno raw =
  let s =
    match String.index_opt raw '#' with
    | Some i -> strip (String.sub raw 0 i)
    | None -> strip raw
  in
  if s = "" then None
  else
    match String.index_opt s '=' with
    | Some eq ->
      let lhs = strip (String.sub s 0 eq) in
      let rhs = strip (String.sub s (eq + 1) (String.length s - eq - 1)) in
      if lhs = "" then fail lineno "missing left-hand side";
      let mnemonic, args = parse_call lineno rhs in
      Some (S_def (lhs, mnemonic, args))
    | None ->
      let mnemonic, args = parse_call lineno s in
      (match (String.uppercase_ascii mnemonic, args) with
      | "INPUT", [ a ] -> Some (S_input a)
      | "OUTPUT", [ a ] -> Some (S_output a)
      | ("INPUT" | "OUTPUT"), _ -> fail lineno "INPUT/OUTPUT take one name"
      | _ -> fail lineno "unrecognised statement %S" s)

let parse_string text =
  let stmts = ref [] in
  List.iteri
    (fun i raw ->
      match parse_line (i + 1) raw with
      | Some s -> stmts := (i + 1, s) :: !stmts
      | None -> ())
    (String.split_on_char '\n' text);
  let stmts = List.rev !stmts in
  (* Pass 1: allocate dense ids for every defined net, in file order. *)
  let ids = Hashtbl.create 256 in
  let order = ref [] in
  let declare line name =
    if Hashtbl.mem ids name then fail line "net %S defined twice" name;
    Hashtbl.add ids name (Hashtbl.length ids);
    order := name :: !order
  in
  List.iter
    (fun (line, s) ->
      match s with
      | S_input name -> declare line name
      | S_def (name, _, _) -> declare line name
      | S_output _ -> ())
    stmts;
  let n = Hashtbl.length ids in
  let names = Array.of_list (List.rev !order) in
  let kinds = Array.make n Gate.Input in
  let fanins = Array.make n [||] in
  let outputs = ref [] in
  let lookup line name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> fail line "reference to undefined net %S" name
  in
  List.iter
    (fun (line, s) ->
      match s with
      | S_input _ -> ()
      | S_output name -> outputs := lookup line name :: !outputs
      | S_def (name, mnemonic, args) ->
        let id = lookup line name in
        (match Gate.of_name mnemonic with
        | None -> fail line "unknown gate kind %S" mnemonic
        | Some Gate.Input -> fail line "INPUT used as a gate"
        | Some kind ->
          if not (Gate.arity_ok kind (List.length args)) then
            fail line "%s with %d fanins" (Gate.name kind) (List.length args);
          kinds.(id) <- kind;
          fanins.(id) <- Array.of_list (List.map (lookup line) args)))
    stmts;
  try Netlist.make ~names ~kinds ~fanins ~pos:(Array.of_list (List.rev !outputs))
  with Invalid_argument msg -> raise (Parse_error (0, msg))

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string t =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "# %d inputs, %d outputs, %d gates\n" (Netlist.num_pis t)
    (Netlist.num_pos t) (Netlist.num_gates t);
  Array.iter (fun pi -> Printf.bprintf buf "INPUT(%s)\n" (Netlist.name t pi)) (Netlist.pis t);
  Array.iter (fun po -> Printf.bprintf buf "OUTPUT(%s)\n" (Netlist.name t po)) (Netlist.pos t);
  Array.iter
    (fun n ->
      match Netlist.kind t n with
      | Gate.Input -> ()
      | kind ->
        let args =
          Netlist.fanin t n |> Array.to_list
          |> List.map (Netlist.name t)
          |> String.concat ", "
        in
        Printf.bprintf buf "%s = %s(%s)\n" (Netlist.name t n) (Gate.name kind) args)
    (Netlist.topo_order t);
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
