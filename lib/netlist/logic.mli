(** Logic values and word-parallel logic operations.

    Two domains are used throughout the repository:

    - two-valued logic packed 63 patterns per OCaml [int] word, for the
      bit-parallel good-machine and fault simulators;
    - three-valued logic (0, 1, X) for ATPG, X-injection analysis and the
      dual-rail ternary simulator. *)

(** Three-valued logic. *)
type v3 = V0 | V1 | X

val v3_of_bool : bool -> v3

val bool_of_v3 : v3 -> bool option
(** [None] on [X]. *)

val v3_not : v3 -> v3
val v3_and : v3 -> v3 -> v3
val v3_or : v3 -> v3 -> v3
val v3_xor : v3 -> v3 -> v3

val v3_equal : v3 -> v3 -> bool

val pp_v3 : Format.formatter -> v3 -> unit
(** Prints [0], [1] or [X]. *)

val char_of_v3 : v3 -> char
val v3_of_char : char -> v3
(** Accepts ['0'], ['1'], ['x'], ['X']; raises [Invalid_argument]
    otherwise. *)

(** {1 Word-level helpers}

    A word carries up to {!Bitvec.word_bits} pattern bits.  Words
    are not masked during simulation; consumers mask with [mask_of_width]
    before comparing or counting. *)

val ones : int
(** All 63 usable bits set. *)

val mask_of_width : int -> int
(** [mask_of_width k] has the low [k] bits set, [0 <= k <= 63]. *)

val popcount : int -> int
(** Set bits in a word. *)

val iter_bits : int -> (int -> unit) -> unit
(** [iter_bits w f] applies [f] to the index of every set bit of [w],
    lowest first (ctz-based — cost is proportional to the number of set
    bits, not the word width). *)
