(** Imperative netlist construction.

    The builder allocates dense net ids as gates are added and freezes
    into an immutable {!Netlist.t}.  All circuit generators and the
    `.bench` parser are written against this interface. *)

type t

val create : unit -> t

val input : t -> string -> Netlist.net
(** Declare a primary input net. *)

val gate : t -> string -> Gate.kind -> Netlist.net list -> Netlist.net
(** [gate b name kind fanins] adds a gate driving a fresh net called
    [name].  Raises [Invalid_argument] on duplicate names or arity
    violations (checked again at [finalize]). *)

val fresh : t -> string -> string
(** [fresh b prefix] returns a name of the form [prefix] or [prefix_k]
    that is not yet used, and reserves nothing — call it right before
    [gate]. *)

val mark_output : t -> Netlist.net -> unit
(** Declare a net as primary output, in call order.  A net may be marked
    only once. *)

val finalize : t -> Netlist.t
(** Freeze.  The builder must not be reused afterwards. *)

(** {1 Convenience combinators}

    Shorthand used heavily by the generators; names are auto-generated
    from the prefix. *)

val not_ : t -> ?name:string -> Netlist.net -> Netlist.net
val and_ : t -> ?name:string -> Netlist.net list -> Netlist.net
val or_ : t -> ?name:string -> Netlist.net list -> Netlist.net
val nand_ : t -> ?name:string -> Netlist.net list -> Netlist.net
val nor_ : t -> ?name:string -> Netlist.net list -> Netlist.net
val xor_ : t -> ?name:string -> Netlist.net list -> Netlist.net
val xnor_ : t -> ?name:string -> Netlist.net list -> Netlist.net
val buf_ : t -> ?name:string -> Netlist.net -> Netlist.net
val mux_ : t -> ?name:string -> sel:Netlist.net -> Netlist.net -> Netlist.net -> Netlist.net
(** [mux_ b ~sel a0 a1] is [a0] when [sel = 0], else [a1]; expands into
    AND/OR/NOT gates. *)
