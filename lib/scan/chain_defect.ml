type t = { chain : int; position : int; stuck : bool }

let check d defect =
  if defect.chain < 0 || defect.chain >= Scan_design.num_chains d then
    invalid_arg "Chain_defect: bad chain";
  if defect.position < 0 then invalid_arg "Chain_defect: bad position"

(* Apply [f cell chain_pos] to every cell of the defect's chain. *)
let iter_chain d defect f =
  for cell = 0 to Scan_design.num_cells d - 1 do
    let c, k = Scan_design.chain_position d cell in
    if c = defect.chain then f cell k
  done

let corrupt_load d defect intended =
  check d defect;
  let actual = Array.copy intended in
  iter_chain d defect (fun cell k -> if k <= defect.position then actual.(cell) <- defect.stuck);
  actual

let corrupt_unload d defect captured =
  check d defect;
  let observed = Array.copy captured in
  iter_chain d defect (fun cell k -> if k >= defect.position then observed.(cell) <- defect.stuck);
  observed

let cells_of_chain d chain =
  let out = ref [] in
  for cell = Scan_design.num_cells d - 1 downto 0 do
    let c, k = Scan_design.chain_position d cell in
    if c = chain then out := (k, cell) :: !out
  done;
  List.sort compare !out

let flush d defect ~chain ~fill =
  let cells = cells_of_chain d chain in
  let observed_of_cellvalues values =
    Array.of_list (List.map (fun (_, cell) -> values.(cell)) cells)
  in
  let intended = Array.make (Scan_design.num_cells d) fill in
  match defect with
  | None -> observed_of_cellvalues intended
  | Some df ->
    if df.chain <> chain then observed_of_cellvalues intended
    else begin
      (* A flush shifts straight through: every observed bit both entered
         through the load path and left through the unload path, so it is
         corrupted if it crossed the break either way — with a constant
         fill that is simply "stuck wins everywhere it touches". *)
      let loaded = corrupt_load d df intended in
      let observed = corrupt_unload d df loaded in
      observed_of_cellvalues observed
    end

let observed_scan_test d defect ~load ~inputs =
  let load =
    match defect with None -> load | Some df -> corrupt_load d df load
  in
  let po, captured = Scan_design.step d ~state:load ~inputs in
  let unload =
    match defect with None -> captured | Some df -> corrupt_unload d df captured
  in
  (po, unload)
