type t = {
  core : Netlist.t;
  num_pis : int;
  num_pos : int;
  num_cells : int;
  chains : int array array; (* chains.(c).(k) = cell index; k = 0 nearest scan-out *)
  coord : (int * int) array; (* cell -> (chain, position) *)
}

let make ~core ~pis ~pos ~chains =
  let total_pis = Netlist.num_pis core in
  let total_pos = Netlist.num_pos core in
  if pis < 0 || pis > total_pis then invalid_arg "Scan_design.make: bad PI split";
  if pos < 0 || pos > total_pos then invalid_arg "Scan_design.make: bad PO split";
  let cells_in = total_pis - pis in
  let cells_out = total_pos - pos in
  if cells_in <> cells_out then
    invalid_arg
      (Printf.sprintf "Scan_design.make: %d PPIs but %d PPOs" cells_in cells_out);
  if chains < 1 || (chains > cells_in && cells_in > 0) then
    invalid_arg "Scan_design.make: bad chain count";
  let num_cells = cells_in in
  let chain_lists = Array.make chains [] in
  for cell = num_cells - 1 downto 0 do
    let c = cell mod chains in
    chain_lists.(c) <- cell :: chain_lists.(c)
  done;
  let chain_arrays = Array.map Array.of_list chain_lists in
  let coord = Array.make (max 1 num_cells) (0, 0) in
  Array.iteri
    (fun c cells -> Array.iteri (fun k cell -> coord.(cell) <- (c, k)) cells)
    chain_arrays;
  { core; num_pis = pis; num_pos = pos; num_cells; chains = chain_arrays; coord }

let core t = t.core
let num_pis t = t.num_pis
let num_pos t = t.num_pos
let num_cells t = t.num_cells
let num_chains t = Array.length t.chains

let cell_of_ppi t pi_position =
  if pi_position >= t.num_pis && pi_position < t.num_pis + t.num_cells then
    Some (pi_position - t.num_pis)
  else None

let cell_of_ppo t po_position =
  if po_position >= t.num_pos && po_position < t.num_pos + t.num_cells then
    Some (po_position - t.num_pos)
  else None

let chain_position t cell =
  if cell < 0 || cell >= t.num_cells then invalid_arg "Scan_design.chain_position";
  t.coord.(cell)

let describe_po t po_position =
  let name = Netlist.name t.core (Netlist.pos t.core).(po_position) in
  match cell_of_ppo t po_position with
  | None -> Printf.sprintf "PO %s" name
  | Some cell ->
    let c, k = chain_position t cell in
    Printf.sprintf "chain %d cell %d (%s)" c k name

let initial_state t = Array.make t.num_cells false

let scan_pattern t ~load ~inputs =
  if Array.length load <> t.num_cells then invalid_arg "Scan_design: state width";
  if Array.length inputs <> t.num_pis then invalid_arg "Scan_design: input width";
  Array.append inputs load

let step t ~state ~inputs =
  let vector = scan_pattern t ~load:state ~inputs in
  let values = Logic_sim.simulate_pattern t.core vector in
  let pos = Netlist.pos t.core in
  let true_pos = Array.init t.num_pos (fun oi -> values.(pos.(oi))) in
  let next = Array.init t.num_cells (fun cell -> values.(pos.(t.num_pos + cell))) in
  (true_pos, next)

let run t ~state inputs_seq =
  let state = ref (Array.copy state) in
  let outputs =
    List.map
      (fun inputs ->
        let po, next = step t ~state:!state ~inputs in
        state := next;
        po)
      inputs_seq
  in
  (outputs, !state)

let pp_stats ppf t =
  Format.fprintf ppf "%d PI, %d PO, %d scan cells in %d chains, core: %a" t.num_pis
    t.num_pos t.num_cells (num_chains t) Netlist.pp_stats t.core
