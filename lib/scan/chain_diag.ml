type finding =
  | Chain_ok
  | Chain_stuck of { stuck : bool }
  | Chain_inconsistent

let all_equal value a = Array.for_all (fun b -> b = value) a

let classify_flushes ~flush0 ~flush1 =
  match (all_equal false flush0, all_equal true flush1) with
  | true, true -> Chain_ok
  | false, true ->
    (* Corruption only when flushing 0: stuck-at-1, and the whole flush
       must read 1 (every bit crosses the break). *)
    if all_equal true flush0 then Chain_stuck { stuck = true } else Chain_inconsistent
  | true, false ->
    if all_equal false flush1 then Chain_stuck { stuck = false } else Chain_inconsistent
  | false, false -> Chain_inconsistent

let diagnose d ~flush =
  Array.init (Scan_design.num_chains d) (fun chain ->
      let flush0 = flush ~chain ~fill:false in
      let flush1 = flush ~chain ~fill:true in
      classify_flushes ~flush0 ~flush1)

type scan_test = {
  load : bool array;
  inputs : bool array;
  observed_po : bool array;
  observed_unload : bool array;
}

let verify d hypothesis ~load ~inputs ~observed_po ~observed_unload =
  let po, unload = Chain_defect.observed_scan_test d (Some hypothesis) ~load ~inputs in
  po = observed_po && unload = observed_unload

let chain_length d chain =
  let n = ref 0 in
  for cell = 0 to Scan_design.num_cells d - 1 do
    let c, _ = Scan_design.chain_position d cell in
    if c = chain then incr n
  done;
  !n

let locate_position d ~chain ~stuck ~tests =
  let candidates = ref [] in
  for position = chain_length d chain - 1 downto 0 do
    let hypothesis = { Chain_defect.chain; position; stuck } in
    let consistent =
      List.for_all
        (fun t ->
          verify d hypothesis ~load:t.load ~inputs:t.inputs ~observed_po:t.observed_po
            ~observed_unload:t.observed_unload)
        tests
    in
    if consistent then candidates := position :: !candidates
  done;
  !candidates
