(** Defects in the scan chain itself.

    Diagnosis flows must first establish that the scan apparatus works:
    a stuck shift path corrupts {e loads} and {e unloads} rather than the
    functional logic, and mis-attributing that to the core wastes the
    whole analysis.  The model here is the standard one: a stuck-at at
    chain position [p] corrupts every bit that passes through it.

    With scan-in at the far end (position [length-1]) and scan-out at
    position [0]:

    - loading: the value bound for cell [k] traverses positions
      [length-1 .. k], so loads are corrupted for every [k <= p];
    - unloading: the captured value of cell [k] traverses positions
      [k .. 0] on its way out, so observations are corrupted for every
      [k >= p].

    That asymmetry is exactly what {!Chain_diag} exploits to pinpoint
    [p]. *)

type t = {
  chain : int;
  position : int;  (** 0 = nearest scan-out. *)
  stuck : bool;
}

val corrupt_load : Scan_design.t -> t -> bool array -> bool array
(** [corrupt_load d defect intended]: the cell values actually loaded
    (indexed by cell, as in {!Scan_design.scan_pattern}). *)

val corrupt_unload : Scan_design.t -> t -> bool array -> bool array
(** [corrupt_unload d defect captured]: the cell values the tester
    observes. *)

val flush : Scan_design.t -> t option -> chain:int -> fill:bool -> bool array
(** [flush d defect ~chain ~fill]: the observed unload of [chain] after
    shifting in the constant [fill] (a {e flush test} — no capture).
    Positions are chain-local, 0 nearest scan-out. *)

val observed_scan_test :
  Scan_design.t -> t option -> load:bool array -> inputs:bool array ->
  bool array * bool array
(** One scan test against a (possibly chain-defective) design:
    [(true PO values, observed cell unload)].  The functional core is
    healthy; only the chain corrupts data. *)
