(** Full-scan sequential designs.

    The paper's circuits are scan designs: every flip-flop is stitched
    into a shift register, so the tester can load an arbitrary state,
    pulse one functional clock and unload the captured next state.  For
    test generation and diagnosis this reduces the design to its
    {e combinational core}: flip-flop outputs become pseudo-primary
    inputs (PPIs) and flip-flop inputs pseudo-primary outputs (PPOs).

    This module keeps the sequential identity on top of that reduction:
    which core PIs/POs are scan cells, how cells map to (chain, position)
    coordinates on the tester, and how the design behaves {e as a
    sequential machine} (for validating circuit generators and producing
    functional stimuli). *)

type t

val make : core:Netlist.t -> pis:int -> pos:int -> chains:int -> t
(** [make ~core ~pis ~pos ~chains] declares that [core]'s first [pis]
    primary inputs are the true inputs (the rest, in order, are PPIs of
    cells 0, 1, ...), and its first [pos] outputs are the true outputs
    (the rest are the matching PPOs).  The PPI and PPO counts must agree
    — that shared count is the number of scan cells — and cells are
    dealt round-robin into [chains] chains.  Raises [Invalid_argument]
    otherwise. *)

val core : t -> Netlist.t
(** The combinational core — what ATPG, simulation and diagnosis run on.
    Its PI order is [true inputs @ cell states]; PO order is
    [true outputs @ next states]. *)

val num_pis : t -> int
(** True primary inputs. *)

val num_pos : t -> int
(** True primary outputs. *)

val num_cells : t -> int
val num_chains : t -> int

val cell_of_ppi : t -> int -> int option
(** [cell_of_ppi t pi_position]: the scan cell a core PI position belongs
    to, if it is a PPI. *)

val cell_of_ppo : t -> int -> int option
(** Same for core PO positions. *)

val chain_position : t -> int -> int * int
(** [chain_position t cell] = (chain index, position along that chain,
    0 = closest to scan-out). *)

val describe_po : t -> int -> string
(** Tester-facing name of a core PO position: ["PO <name>"] for a true
    output, ["chain <c> cell <k> (<name>)"] for a PPO — how a real
    datalog names failing observations. *)

(** {1 Sequential semantics} *)

val initial_state : t -> bool array
(** All-zero state vector (one bit per cell). *)

val step : t -> state:bool array -> inputs:bool array -> bool array * bool array
(** [step t ~state ~inputs] = (true PO values, next state): one
    functional clock. *)

val run : t -> state:bool array -> bool array list -> bool array list * bool array
(** Multi-cycle functional simulation: per-cycle true PO values and the
    final state. *)

val scan_pattern : t -> load:bool array -> inputs:bool array -> bool array
(** The core PI vector a tester applies for one scan test: [load] into
    the cells, [inputs] on the true PIs. *)

val pp_stats : Format.formatter -> t -> unit
