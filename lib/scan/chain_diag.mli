(** Scan-chain integrity checking and chain-fault localisation.

    The first step of any silicon diagnosis flow: run {e flush tests}
    (shift a constant through every chain, no capture) and decide whether
    the scan apparatus itself is broken before blaming the logic.

    A flushed bit travels the whole chain — from scan-in past every
    position to scan-out — so under a stuck-through fault it always
    crosses the break: flushing the complement of the stuck value reads
    {e all-stuck}, flushing the stuck value reads clean.  Flushes
    therefore identify the faulty chain and the polarity but are
    {b position-blind}; that is the textbook reason chain diagnosis
    needs {e capture} (scan) tests for localisation.

    {!locate_position} does exactly that: the load-side corruption of a
    hypothesised break at [p] reaches the functional logic (cells
    [k <= p] capture from corrupted state), so different [p] produce
    different captured responses, and a handful of random scan tests
    narrows the consistent positions — usually to one. *)

type finding =
  | Chain_ok
  | Chain_stuck of { stuck : bool }
      (** The chain is stuck; position must come from capture tests. *)
  | Chain_inconsistent
      (** The flush responses fit no single stuck-through fault. *)

val classify_flushes : flush0:bool array -> flush1:bool array -> finding
(** Decide one chain from its two flush observations. *)

val diagnose :
  Scan_design.t -> flush:(chain:int -> fill:bool -> bool array) -> finding array
(** Run both flushes on every chain of the design and classify.  The
    [flush] callback abstracts the tester (in experiments it is
    [Chain_defect.flush d defect]). *)

type scan_test = {
  load : bool array;
  inputs : bool array;
  observed_po : bool array;
  observed_unload : bool array;
}

val locate_position :
  Scan_design.t -> chain:int -> stuck:bool -> tests:scan_test list -> int list
(** Positions along [chain] whose stuck-through hypothesis reproduces
    every given scan test exactly, ascending.  With a few random tests
    the list typically collapses to the true break. *)

val verify :
  Scan_design.t ->
  Chain_defect.t ->
  load:bool array ->
  inputs:bool array ->
  observed_po:bool array ->
  observed_unload:bool array ->
  bool
(** Does the hypothesis reproduce one observed scan test exactly? *)
