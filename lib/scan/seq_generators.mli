(** Sequential benchmark generators (full-scan designs).

    Each returns a {!Scan_design.t} whose combinational core follows the
    PI/PO convention of {!Scan_design.make}.  Functional behaviour is
    validated by the test suite through {!Scan_design.run}. *)

val counter : int -> Scan_design.t
(** [counter w]: [w]-bit up counter with enable; true PI [en], true PO
    [tc] (terminal count), state increments when enabled. *)

val accumulator : int -> Scan_design.t
(** [accumulator w]: state += input each cycle (wrapping); true PIs
    [d*], true PO [ovf] (carry out of the addition). *)

val lfsr : int -> Scan_design.t
(** [lfsr w]: Galois LFSR built on {!Generators.crc_step}; true PI [d]
    (data scrambling input), true PO [out] (the MSB). *)

val shift_register : int -> Scan_design.t
(** [shift_register w]: serial-in serial-out; true PI [sin], true PO
    [sout]. *)

val pipelined_adder : int -> Scan_design.t
(** [pipelined_adder w]: two-stage pipeline — stage 1 registers the
    lower-half sum and carry, stage 2 completes the upper half; true PIs
    [a*], [b*]; true POs [s*] plus [cout] (one-cycle latency on the
    upper half). *)

val seq_suite : unit -> (string * Scan_design.t) list
(** cnt8, acc8, lfsr16, sr16, pipe8 — the sequential circuits of the
    scan experiment. *)
