(* Cores follow the Scan_design convention: true PIs first, then one PPI
   per cell; true POs first, then the matching next-state PPOs. *)

let half_add b ~tag a c =
  let s = Builder.xor_ b ~name:(Builder.fresh b (tag ^ "_s")) [ a; c ] in
  let carry = Builder.and_ b ~name:(Builder.fresh b (tag ^ "_c")) [ a; c ] in
  (s, carry)

let full_add b ~tag a x cin =
  let axb = Builder.xor_ b ~name:(Builder.fresh b (tag ^ "_axb")) [ a; x ] in
  let s = Builder.xor_ b ~name:(Builder.fresh b (tag ^ "_s")) [ axb; cin ] in
  let c1 = Builder.and_ b ~name:(Builder.fresh b (tag ^ "_c1")) [ a; x ] in
  let c2 = Builder.and_ b ~name:(Builder.fresh b (tag ^ "_c2")) [ axb; cin ] in
  (s, Builder.or_ b ~name:(Builder.fresh b (tag ^ "_co")) [ c1; c2 ])

let counter w =
  assert (w >= 2);
  let b = Builder.create () in
  let en = Builder.input b "en" in
  let q = Array.init w (fun i -> Builder.input b (Printf.sprintf "q%d" i)) in
  let tc = Builder.and_ b ~name:"tc" (Array.to_list q) in
  Builder.mark_output b tc;
  let carry = ref en in
  for i = 0 to w - 1 do
    let s, c = half_add b ~tag:(Printf.sprintf "inc%d" i) q.(i) !carry in
    Builder.mark_output b s;
    carry := c
  done;
  Scan_design.make ~core:(Builder.finalize b) ~pis:1 ~pos:1 ~chains:1

let accumulator w =
  assert (w >= 2);
  let b = Builder.create () in
  let d = Array.init w (fun i -> Builder.input b (Printf.sprintf "d%d" i)) in
  let q = Array.init w (fun i -> Builder.input b (Printf.sprintf "q%d" i)) in
  let carry = ref None in
  let sums = Array.make w (-1) in
  for i = 0 to w - 1 do
    match !carry with
    | None ->
      let s, c = half_add b ~tag:(Printf.sprintf "ac%d" i) q.(i) d.(i) in
      sums.(i) <- s;
      carry := Some c
    | Some cin ->
      let s, c = full_add b ~tag:(Printf.sprintf "ac%d" i) q.(i) d.(i) cin in
      sums.(i) <- s;
      carry := Some c
  done;
  let ovf =
    match !carry with Some c -> Builder.buf_ b ~name:"ovf" c | None -> assert false
  in
  Builder.mark_output b ovf;
  Array.iter (Builder.mark_output b) sums;
  Scan_design.make ~core:(Builder.finalize b) ~pis:w ~pos:1 ~chains:2

let lfsr w =
  assert (w >= 4);
  let b = Builder.create () in
  let d = Builder.input b "d" in
  let q = Array.init w (fun i -> Builder.input b (Printf.sprintf "q%d" i)) in
  let out = Builder.buf_ b ~name:"out" q.(w - 1) in
  Builder.mark_output b out;
  let feedback = Builder.xor_ b ~name:"fb" [ q.(w - 1); d ] in
  let taps = [ 0; 1; w / 2 ] in
  for i = 0 to w - 1 do
    let next =
      if i = 0 then Builder.buf_ b ~name:(Printf.sprintf "n%d" i) feedback
      else if List.mem i taps then
        Builder.xor_ b ~name:(Printf.sprintf "n%d" i) [ q.(i - 1); feedback ]
      else Builder.buf_ b ~name:(Printf.sprintf "n%d" i) q.(i - 1)
    in
    Builder.mark_output b next
  done;
  Scan_design.make ~core:(Builder.finalize b) ~pis:1 ~pos:1 ~chains:1

let shift_register w =
  assert (w >= 2);
  let b = Builder.create () in
  let sin = Builder.input b "sin" in
  let q = Array.init w (fun i -> Builder.input b (Printf.sprintf "q%d" i)) in
  let sout = Builder.buf_ b ~name:"sout" q.(w - 1) in
  Builder.mark_output b sout;
  for i = 0 to w - 1 do
    let src = if i = 0 then sin else q.(i - 1) in
    Builder.mark_output b (Builder.buf_ b ~name:(Printf.sprintf "n%d" i) src)
  done;
  Scan_design.make ~core:(Builder.finalize b) ~pis:1 ~pos:1 ~chains:1

let pipelined_adder w =
  assert (w >= 4 && w mod 2 = 0);
  let half = w / 2 in
  let b = Builder.create () in
  let a = Array.init w (fun i -> Builder.input b (Printf.sprintf "a%d" i)) in
  let x = Array.init w (fun i -> Builder.input b (Printf.sprintf "b%d" i)) in
  (* State: registered lower sums, registered mid carry, registered upper
     operands. *)
  let q_slo = Array.init half (fun i -> Builder.input b (Printf.sprintf "qs%d" i)) in
  let q_c = Builder.input b "qc" in
  let q_ahi = Array.init half (fun i -> Builder.input b (Printf.sprintf "qa%d" i)) in
  let q_bhi = Array.init half (fun i -> Builder.input b (Printf.sprintf "qb%d" i)) in
  (* True outputs: lower sums straight from the registers, upper sums
     computed from the registered operands and carry. *)
  let outputs = ref [] in
  Array.iteri
    (fun i qs -> outputs := Builder.buf_ b ~name:(Printf.sprintf "s%d" i) qs :: !outputs)
    q_slo;
  let carry = ref q_c in
  for i = 0 to half - 1 do
    let s, c = full_add b ~tag:(Printf.sprintf "hi%d" i) q_ahi.(i) q_bhi.(i) !carry in
    outputs := Builder.buf_ b ~name:(Printf.sprintf "s%d" (half + i)) s :: !outputs;
    carry := c
  done;
  outputs := Builder.buf_ b ~name:"cout" !carry :: !outputs;
  List.iter (Builder.mark_output b) (List.rev !outputs);
  (* Next state: stage 1 adds the lower halves and registers the upper
     operands. *)
  let carry = ref None in
  let n_slo = Array.make half (-1) in
  for i = 0 to half - 1 do
    match !carry with
    | None ->
      let s, c = half_add b ~tag:(Printf.sprintf "lo%d" i) a.(i) x.(i) in
      n_slo.(i) <- s;
      carry := Some c
    | Some cin ->
      let s, c = full_add b ~tag:(Printf.sprintf "lo%d" i) a.(i) x.(i) cin in
      n_slo.(i) <- s;
      carry := Some c
  done;
  Array.iter (Builder.mark_output b) n_slo;
  (match !carry with
  | Some c -> Builder.mark_output b (Builder.buf_ b ~name:"nc" c)
  | None -> assert false);
  Array.iteri
    (fun i ai -> Builder.mark_output b (Builder.buf_ b ~name:(Printf.sprintf "na%d" i) ai))
    (Array.sub a half half);
  Array.iteri
    (fun i bi -> Builder.mark_output b (Builder.buf_ b ~name:(Printf.sprintf "nb%d" i) bi))
    (Array.sub x half half);
  Scan_design.make ~core:(Builder.finalize b) ~pis:(2 * w) ~pos:(w + 1) ~chains:2

let seq_suite_cache = ref None

let seq_suite () =
  match !seq_suite_cache with
  | Some l -> l
  | None ->
    let l =
      [
        ("cnt8", counter 8);
        ("acc8", accumulator 8);
        ("lfsr16", lfsr 16);
        ("sr16", shift_register 16);
        ("pipe8", pipelined_adder 8);
      ]
    in
    seq_suite_cache := Some l;
    l
