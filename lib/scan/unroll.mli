(** Time-frame expansion: diagnosing sequential logic without scan.

    When a design (or a block) has no scan access, the standard reduction
    unrolls it into an iterative logic array: frame [t] is a fresh copy
    of the combinational core, its state inputs driven by frame [t-1]'s
    next-state logic (frame 0 starts from reset, all-zero here).  The
    tester applies a [frames]-cycle input sequence and observes the true
    outputs of every cycle.

    A physical defect lives on ONE core net but appears in EVERY frame
    copy, so diagnosis on the unrolled netlist reports per-frame copies;
    {!collapse_callouts} folds them back to core nets (and a site whose
    copies across several frames are called out is particularly
    credible). *)

type t

val make : Scan_design.t -> frames:int -> t
(** Unroll the design.  The result's primary inputs are
    [f<t>_<name>] for each frame [t] and true input; its primary outputs
    are the per-frame true outputs [f<t>_<name>]. *)

val netlist : t -> Netlist.t
val frames : t -> int

val core_net : t -> Netlist.net -> Netlist.net option
(** The core net an unrolled net copies.  Stitching cells (frame-0 reset
    constants and inter-frame buffers) map to the state net they stand
    for, so callouts on them still point at a core location. *)

val frame_of : t -> Netlist.net -> int
(** Which frame an unrolled net belongs to. *)

val sequence_pattern : t -> bool array list -> bool array
(** Flatten a [frames]-long list of per-cycle input vectors into one PI
    vector of the unrolled netlist. *)

val inject_stuck : t -> Netlist.net -> bool -> Logic_sim.override list
(** A stuck defect on a core net: forces every frame's copy — one
    physical defect, present in all time frames. *)

val collapse_callouts : t -> Netlist.net list -> Netlist.net list
(** Map diagnosis callouts on the unrolled netlist back to core nets,
    deduplicated, preserving first-occurrence order. *)
