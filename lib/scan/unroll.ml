type t = {
  design : Scan_design.t;
  frames : int;
  comb : Netlist.t;
  origin : (int * Netlist.net) array; (* unrolled net -> (frame, core net) *)
  copy : Netlist.net array array; (* copy.(frame).(core net) -> unrolled net *)
}

let make design ~frames =
  assert (frames >= 1);
  let core = Scan_design.core design in
  let b = Builder.create () in
  let ncore = Netlist.num_nets core in
  let copy = Array.init frames (fun _ -> Array.make ncore (-1)) in
  let origin = ref [] in
  (* reversed list of (frame, core net) per created unrolled net.
     [as_core] overrides the recorded origin: frame-stitching cells
     (reset constants, inter-frame buffers) stand for the flip-flop
     itself, whose core-side identity is its D-input (PPO) net. *)
  let created ?as_core frame core_net id =
    copy.(frame).(core_net) <- id;
    let recorded = match as_core with Some c -> c | None -> core_net in
    origin := (frame, recorded) :: !origin
  in
  let pis = Netlist.pis core in
  let pos = Netlist.pos core in
  for frame = 0 to frames - 1 do
    Array.iter
      (fun n ->
        let name = Printf.sprintf "f%d_%s" frame (Netlist.name core n) in
        match Netlist.kind core n with
        | Gate.Input -> (
          (* True input, or a state input to stitch. *)
          let pi_position =
            let rec find i = if pis.(i) = n then i else find (i + 1) in
            find 0
          in
          match Scan_design.cell_of_ppi design pi_position with
          | None -> created frame n (Builder.input b name)
          | Some cell ->
            let d_net = pos.(Scan_design.num_pos design + cell) in
            if frame = 0 then
              (* Reset state: all zero. *)
              created ~as_core:d_net frame n (Builder.gate b name (Gate.Const false) [])
            else begin
              (* Driven by the previous frame's next-state net. *)
              let prev = copy.(frame - 1).(d_net) in
              created ~as_core:d_net frame n (Builder.gate b name Gate.Buf [ prev ])
            end)
        | kind ->
          let fanin =
            Array.to_list (Array.map (fun src -> copy.(frame).(src)) (Netlist.fanin core n))
          in
          created frame n (Builder.gate b name kind fanin))
      (Netlist.topo_order core);
    (* Observe this frame's true outputs. *)
    for oi = 0 to Scan_design.num_pos design - 1 do
      Builder.mark_output b copy.(frame).(pos.(oi))
    done
  done;
  let comb = Builder.finalize b in
  let origin = Array.of_list (List.rev !origin) in
  { design; frames; comb; origin; copy }

let netlist t = t.comb
let frames t = t.frames

let core_net t n =
  let _, core = t.origin.(n) in
  if core >= 0 then Some core else None

let frame_of t n = fst t.origin.(n)

let sequence_pattern t vectors =
  if List.length vectors <> t.frames then
    invalid_arg "Unroll.sequence_pattern: one vector per frame required";
  let npis = Scan_design.num_pis t.design in
  List.iter
    (fun v -> if Array.length v <> npis then invalid_arg "Unroll: input width")
    vectors;
  Array.concat vectors

let inject_stuck t core_site v =
  List.init t.frames (fun frame -> Logic_sim.force t.copy.(frame).(core_site) v)

let collapse_callouts t callouts =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun n ->
      match core_net t n with
      | Some core when not (Hashtbl.mem seen core) ->
        Hashtbl.add seen core ();
        Some core
      | Some _ | None -> None)
    callouts
