(* Diagnosis tool: read a circuit, its test set and a tester datalog, and
   run one of the three diagnosis engines.

     dune exec bin/diagnose.exe -- --circuit alu8 --datalog fail.datalog
     dune exec bin/diagnose.exe -- --circuit alu8 --datalog fail.datalog \
       --method slat *)

open Cmdliner

let datalog_arg =
  let doc = "Tester datalog file (lines: `fail <pattern> : <po> <po> ...')." in
  Arg.(required & opt (some file) None & info [ "datalog" ] ~docv:"FILE" ~doc)

let method_arg =
  let doc = "Diagnosis engine: noassume (the paper's method), slat or single." in
  Arg.(
    value
    & opt (enum [ ("noassume", `Noassume); ("slat", `Slat); ("single", `Single) ]) `Noassume
    & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let no_validate_arg =
  let doc = "Disable multiplet validation/refinement (ablation)." in
  Arg.(value & flag & info [ "no-validate" ] ~doc)

let run bench suite patterns_file datalog_file method_ no_validate no_prune no_cache
    no_batch domains stats =
  Cli_common.apply_domains domains;
  Cli_common.apply_prune_cache ~no_prune ~no_cache ~no_batch;
  let stats_dest = Cli_common.init_stats stats in
  let net = Cli_common.or_die (Cli_common.load_circuit bench suite) in
  let pats = Cli_common.or_die (Cli_common.load_patterns net patterns_file) in
  let dlog =
    let ic = open_in datalog_file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    try
      Datalog.of_text ~npatterns:(Pattern.count pats) ~npos:(Netlist.num_pos net) text
    with Invalid_argument msg -> Cli_common.or_die (Error msg)
  in
  Format.printf "circuit: %a@." Netlist.pp_stats net;
  Format.printf "datalog: %d failing patterns over %d outputs@."
    (Datalog.num_failing dlog) (Netlist.num_pos net);
  (match method_ with
  | `Noassume ->
    let config =
      { Noassume.default_config with validate = not no_validate; domains }
    in
    let r = Noassume.diagnose ~config net pats dlog in
    print_string (Report.render net r)
  | `Slat ->
    let m = Explain.build net pats dlog in
    let r = Slat_diag.diagnose m pats in
    print_string (Report.render_slat net r)
  | `Single ->
    let r = Single_diag.diagnose net pats dlog in
    print_string (Report.render_single net r));
  let method_name =
    match method_ with `Noassume -> "noassume" | `Slat -> "slat" | `Single -> "single"
  in
  let circuit =
    match (suite, bench) with Some s, _ -> s | None, Some b -> b | None, None -> ""
  in
  Cli_common.emit_stats stats_dest
    ~meta:
      [
        ("tool", "diagnose");
        ("method", method_name);
        ("circuit", circuit);
        ("domains", string_of_int (Parallel.default_domains ()));
        ("prune", if Explain.pruning () then "on" else "off");
        ("cache", if Sig_cache.enabled () then "on" else "off");
        ("batch", if Fault_sim.batching () then "on" else "off");
      ]

let cmd =
  let doc = "locate multiple defects from a tester datalog" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Implements the DAC 2008 method: per-failing-output candidate \
         analysis, greedy covering, and multiplet validation by \
         simultaneous multiple-fault simulation — no assumption that \
         failing patterns are SLAT or that a single defect is present.";
    ]
  in
  Cmd.v
    (Cmd.info "diagnose" ~doc ~man)
    Term.(
      const run $ Cli_common.bench_arg $ Cli_common.suite_arg $ Cli_common.patterns_arg
      $ datalog_arg $ method_arg $ no_validate_arg $ Cli_common.no_prune_arg
      $ Cli_common.no_cache_arg $ Cli_common.no_batch_arg $ Cli_common.domains_arg
      $ Cli_common.stats_arg)

let () = exit (Cmd.eval cmd)
