(* Diagnosis tool: read a circuit, its test set and tester datalogs, and
   run a diagnosis engine.

   Single-shot (one die):
     dune exec bin/diagnose.exe -- --circuit alu8 --datalog fail.datalog
     dune exec bin/diagnose.exe -- --circuit alu8 --datalog fail.datalog \
       --method slat

   Volume (one warm session, many dies):
     dune exec bin/diagnose.exe -- --circuit rnd1k --batch-dir dies/ \
       --workers 4 --out reports/
     ls dies/*.datalog | dune exec bin/diagnose.exe -- --circuit rnd1k --serve *)

open Cmdliner

let datalog_arg =
  let doc =
    "Tester datalog file (lines: `fail <pattern> : <po> <po> ...'). Required \
     unless $(b,--batch-dir) or $(b,--serve) is given."
  in
  Arg.(value & opt (some file) None & info [ "datalog" ] ~docv:"FILE" ~doc)

let batch_dir_arg =
  let doc =
    "Volume mode: diagnose every *.datalog file in $(docv) against one warm \
     session, one diagnosis per worker domain, and write per-die JSON reports \
     plus an aggregate rollup (see --out)."
  in
  Arg.(value & opt (some dir) None & info [ "batch-dir" ] ~docv:"DIR" ~doc)

let serve_arg =
  let doc =
    "Service mode: load the session once, then read datalog file paths from \
     stdin (one per line) and emit one JSON report line per die on stdout \
     (or into --out DIR when given) until EOF."
  in
  Arg.(value & flag & info [ "serve" ] ~doc)

let workers_arg =
  let doc =
    "Volume mode: worker domains draining the die queue, one whole diagnosis \
     per domain (default: the runtime's recommended count).  Reports are \
     identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)

let out_arg =
  let doc =
    "Directory for per-die JSON reports (created if missing).  Default: \
     `volume_reports' under --batch-dir mode; stdout under --serve."
  in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)

let method_arg =
  let doc =
    "Diagnosis engine for single-shot runs: noassume (the paper's method), \
     slat or single.  Volume and serve modes always run noassume."
  in
  Arg.(
    value
    & opt (enum [ ("noassume", `Noassume); ("slat", `Slat); ("single", `Single) ]) `Noassume
    & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let no_validate_arg =
  let doc = "Disable multiplet validation/refinement (ablation)." in
  Arg.(value & flag & info [ "no-validate" ] ~doc)

let read_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let run bench suite patterns_file datalog_file batch_dir serve workers out method_
    no_validate no_prune no_cache no_batch prewarm cache_mb cover cover_budget store_dir
    domains stats =
  Cli_common.apply_domains domains;
  let scfg =
    Cli_common.session_config ~prewarm ?cache_mb ?cover ?cover_budget ?store_dir
      ~no_prune ~no_cache ~no_batch ~domains ()
  in
  let stats_dest = Cli_common.init_stats stats in
  let net = Cli_common.or_die (Cli_common.load_circuit bench suite) in
  let pats = Cli_common.or_die (Cli_common.load_patterns net patterns_file) in
  let session = Session.create ~config:scfg net pats in
  let parse_dlog text =
    try
      Ok (Datalog.of_text ~npatterns:(Pattern.count pats) ~npos:(Netlist.num_pos net) text)
    with Invalid_argument msg -> Error msg
  in
  let circuit =
    match (suite, bench) with Some s, _ -> s | None, Some b -> b | None, None -> ""
  in
  let config = { Noassume.default_config with validate = not no_validate; domains } in
  let mode_meta =
    match (batch_dir, serve) with
    | Some dir, _ ->
      (* --- Volume mode: drain a directory of datalogs. ------------- *)
      let dies = Volume.load_dir session dir in
      if dies = [] then Cli_common.or_die (Error ("no *.datalog files in " ^ dir));
      Format.printf "circuit: %a@." Netlist.pp_stats net;
      Format.printf "volume: %d dies from %s@." (List.length dies) dir;
      let die_config = { config with Noassume.domains = Some 1 } in
      let results = Volume.run ~config:die_config ?workers session dies in
      let out = Option.value out ~default:"volume_reports" in
      let ru = Volume.write_results ~dir:out session results in
      Format.printf "wrote %d per-die reports + rollup.json to %s@."
        (List.length results) out;
      let top = List.filteri (fun i _ -> i < 10) ru.Volume.nets in
      List.iter
        (fun n ->
          Format.printf "  %-24s implicated on %d/%d dies (%d observations)@."
            n.Volume.net n.Volume.dies_implicated ru.Volume.dies n.Volume.explained_obs)
        top;
      [
        ("mode", "volume");
        ("dies", string_of_int (List.length results));
        ( "workers",
          string_of_int
            (match workers with Some w -> w | None -> Parallel.default_domains ()) );
      ]
    | None, true ->
      (* --- Serve mode: datalog paths on stdin, reports out. -------- *)
      let die_config = { config with Noassume.domains = Some 1 } in
      let n = ref 0 in
      (try
         while true do
           let path = String.trim (input_line stdin) in
           if path <> "" then begin
             let name = Filename.remove_extension (Filename.basename path) in
             let dlog = Cli_common.or_die (parse_dlog (read_file path)) in
             let r =
               Volume.diagnose_die ~config:die_config session
                 { Volume.name; dlog }
             in
             incr n;
             let json = Volume.die_json r in
             (match out with
             | Some dir ->
               if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
               let oc = open_out (Filename.concat dir (name ^ ".json")) in
               output_string oc json;
               close_out oc;
               Printf.printf "%s: done\n%!" name
             | None -> print_string json);
             flush stdout
           end
         done
       with End_of_file -> ());
      [ ("mode", "serve"); ("dies", string_of_int !n) ]
    | None, false ->
      (* --- Single-shot mode. --------------------------------------- *)
      let datalog_file =
        match datalog_file with
        | Some f -> f
        | None ->
          Cli_common.or_die
            (Error "a datalog is required: --datalog FILE (or --batch-dir/--serve)")
      in
      let dlog = Cli_common.or_die (parse_dlog (read_file datalog_file)) in
      Format.printf "circuit: %a@." Netlist.pp_stats net;
      Format.printf "datalog: %d failing patterns over %d outputs@."
        (Datalog.num_failing dlog) (Netlist.num_pos net);
      let cover_meta =
        match method_ with
        | `Noassume ->
          let r = Noassume.diagnose_session ~config session dlog in
          print_string (Report.render net r);
          (* Surfaced so an exact-cover run can be checked for faithful
             budget reporting from the stats file alone (the CI stress
             step greps for cover_complete). *)
          ("cover_complete", string_of_bool r.Noassume.cover_complete)
          ::
          (match r.Noassume.cover_minimum with
          | Some k -> [ ("cover_minimum", string_of_int k) ]
          | None -> [])
        | `Slat ->
          let m = Explain.build_session session dlog in
          let r = Slat_diag.diagnose m pats in
          print_string (Report.render_slat net r);
          []
        | `Single ->
          let r = Single_diag.diagnose_session session dlog in
          print_string (Report.render_single net r);
          []
      in
      let method_name =
        match method_ with
        | `Noassume -> "noassume"
        | `Slat -> "slat"
        | `Single -> "single"
      in
      [ ("mode", "single"); ("method", method_name) ] @ cover_meta
  in
  Cli_common.emit_stats stats_dest
    ~meta:
      ([ ("tool", "diagnose"); ("circuit", circuit) ]
      @ mode_meta
      @ Cli_common.config_meta scfg)

let cmd =
  let doc = "locate multiple defects from tester datalogs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Implements the DAC 2008 method: per-failing-output candidate \
         analysis, greedy covering, and multiplet validation by \
         simultaneous multiple-fault simulation — no assumption that \
         failing patterns are SLAT or that a single defect is present.";
      `P
        "With --batch-dir or --serve the tool runs as a volume-diagnosis \
         service: the engine context (good-machine words, reachability \
         screen, signature cache) is built once and every die reuses it, \
         one whole diagnosis per worker domain.";
    ]
  in
  Cmd.v
    (Cmd.info "diagnose" ~doc ~man)
    Term.(
      const run $ Cli_common.bench_arg $ Cli_common.suite_arg $ Cli_common.patterns_arg
      $ datalog_arg $ batch_dir_arg $ serve_arg $ workers_arg $ out_arg $ method_arg
      $ no_validate_arg $ Cli_common.no_prune_arg $ Cli_common.no_cache_arg
      $ Cli_common.no_batch_arg $ Cli_common.prewarm_arg $ Cli_common.cache_mb_arg
      $ Cli_common.cover_arg $ Cli_common.cover_budget_arg $ Cli_common.store_dir_arg
      $ Cli_common.domains_arg $ Cli_common.stats_arg)

let () = exit (Cmd.eval cmd)
