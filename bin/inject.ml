(* Defect injection tool: draw random defects, simulate the faulty
   machine over a test set and emit the tester datalog (plus the ground
   truth, for later scoring).

     dune exec bin/inject.exe -- --circuit alu8 -k 3 --mix mixed --seed 7 \
       --datalog out.datalog *)

open Cmdliner

let multiplicity_arg =
  let doc = "Number of simultaneous defects to inject." in
  Arg.(value & opt int 2 & info [ "k"; "multiplicity" ] ~docv:"N" ~doc)

let mix_arg =
  let doc = "Defect mix: stuck, bridge, open, intermittent or mixed." in
  Arg.(value & opt string "mixed" & info [ "mix" ] ~docv:"MIX" ~doc)

let datalog_arg =
  let doc = "Write the datalog to $(docv) (default: stdout)." in
  Arg.(value & opt (some string) None & info [ "datalog" ] ~docv:"FILE" ~doc)

let run bench suite patterns_file seed multiplicity mix_name datalog_out =
  let net = Cli_common.or_die (Cli_common.load_circuit bench suite) in
  let mix =
    match Injection.mix_of_string mix_name with
    | Some m -> m
    | None -> Cli_common.or_die (Error ("unknown mix " ^ mix_name))
  in
  let pats = Cli_common.or_die (Cli_common.load_patterns net patterns_file) in
  let rng = Rng.create seed in
  let expected = Logic_sim.responses net pats in
  let rec draw attempts =
    if attempts = 0 then Cli_common.or_die (Error "injected defects never failed the test")
    else begin
      let defects = Injection.random_defects rng net mix multiplicity in
      let observed = Injection.observed_responses net pats defects in
      let dlog = Datalog.of_responses ~expected ~observed in
      if Datalog.num_failing dlog = 0 then draw (attempts - 1) else (defects, dlog)
    end
  in
  let defects, dlog = draw 100 in
  Format.eprintf "# ground truth:@.";
  List.iter (fun d -> Format.eprintf "#   %s@." (Defect.describe net d)) defects;
  Format.eprintf "# %d failing patterns out of %d@." (Datalog.num_failing dlog)
    (Pattern.count pats);
  let text = Datalog.to_text dlog in
  match datalog_out with
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Format.eprintf "# wrote %s@." path
  | None -> print_string text

let cmd =
  let doc = "inject random defects and emit the tester datalog" in
  Cmd.v
    (Cmd.info "inject" ~doc)
    Term.(
      const run $ Cli_common.bench_arg $ Cli_common.suite_arg $ Cli_common.patterns_arg
      $ Cli_common.seed_arg $ multiplicity_arg $ mix_arg $ datalog_arg)

let () = exit (Cmd.eval cmd)
