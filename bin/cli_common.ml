(* Shared pieces of the command-line tools: circuit loading (from a
   `.bench` file or the built-in suite) and pattern-set sourcing. *)

open Cmdliner

let load_circuit bench suite =
  match (bench, suite) with
  | Some path, None -> (
    try
      if Filename.check_suffix path ".v" then Ok (Verilog_io.parse_file path)
      else Ok (Bench_io.parse_file path)
    with
    | Bench_io.Parse_error (line, msg) | Verilog_io.Parse_error (line, msg) ->
      Error (Printf.sprintf "%s:%d: %s" path line msg)
    | Sys_error msg -> Error msg)
  | None, Some name -> (
    (* Suite first, then the large benchmark tiers (rnd10k/rnd50k and
       vendored .bench circuits) — forced lazily, so suite lookups never
       pay tier construction. *)
    match Generators.find_suite name with
    | Some net -> Ok net
    | None -> (
      match Generators.find_tier name with
      | Some net -> Ok net
      | None ->
        Error
          (Printf.sprintf "unknown circuit %S (try: %s)" name
             (String.concat ", "
                (List.map fst (Generators.suite ())
                @ List.map fst (Generators.tiers ()))))))
  | Some _, Some _ -> Error "give either --bench or --circuit, not both"
  | None, None -> Error "a circuit is required: --bench FILE or --circuit NAME"

let bench_arg =
  let doc =
    "Read the circuit from a netlist file: ISCAS `.bench', or structural \
     Verilog when the name ends in `.v'."
  in
  Arg.(value & opt (some file) None & info [ "bench" ] ~docv:"FILE" ~doc)

let suite_arg =
  let doc = "Use a built-in benchmark circuit (see Table 1: c17, add8, alu8, ...)." in
  Arg.(value & opt (some string) None & info [ "c"; "circuit" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "Deterministic seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "OCaml domains for the simulation kernels (default: the runtime's \
     recommended count, capped at 8; MDD_DOMAINS overrides). Results are \
     identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

(* The CLI override wins over MDD_DOMAINS; [None] leaves the
   environment-derived default in place. *)
let apply_domains = Option.iter Parallel.set_domains

let no_prune_arg =
  let doc =
    "Disable the exactness-preserving candidate prunes (activation \
     screen and equivalence-class collapse) in the explanation matrix; \
     the MDD_NO_PRUNE environment variable does the same.  For A/B \
     measurement — results are identical either way."
  in
  Arg.(value & flag & info [ "no-prune" ] ~doc)

let no_cache_arg =
  let doc =
    "Disable the cross-phase fault-signature cache; the MDD_NO_CACHE \
     environment variable does the same.  For A/B measurement — results \
     are identical either way."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let no_batch_arg =
  let doc =
    "Disable the PPSFP batched fault-simulation pass and fall back to \
     the per-fault scalar sweep; the MDD_NO_BATCH environment variable \
     does the same.  For A/B measurement — results are identical either \
     way."
  in
  Arg.(value & flag & info [ "no-batch" ] ~doc)

let prewarm_arg =
  let doc =
    "Before the first diagnosis, fault-simulate the whole collapsed \
     fault pool in one batched sweep and freeze the signature cache: \
     every later signature read is lock-free, and the cold first-die \
     path disappears.  Pays off when many datalogs share one circuit \
     ($(b,--batch-dir), $(b,--serve)); the MDD_PREWARM environment \
     variable does the same.  Results are identical either way."
  in
  Arg.(value & flag & info [ "prewarm" ] ~doc)

let cache_mb_arg =
  let doc =
    "Signature-cache memory budget per problem, in MB (default 64); the \
     MDD_SIG_CACHE_MB environment variable is the documented fallback."
  in
  Arg.(value & opt (some int) None & info [ "cache-mb" ] ~docv:"MB" ~doc)

let cover_arg =
  let doc =
    "Covering backend for the noassume engine: $(b,greedy) (the paper's \
     iterative cover, the default) or $(b,exact) (minimum-cardinality \
     cover via the implicit hitting-set loop, seeded with the greedy \
     result as an upper bound — never larger than greedy, and proven \
     minimum when the search completes).  The MDD_COVER environment \
     variable is the fallback."
  in
  Arg.(
    value
    & opt (some (enum [ ("greedy", Session.Greedy); ("exact", Session.Exact) ])) None
    & info [ "cover" ] ~docv:"BACKEND" ~doc)

let store_dir_arg =
  let doc =
    "Directory for persistent signature snapshots.  With $(b,--prewarm), \
     a valid snapshot for this (circuit, pattern set) is loaded instead \
     of running the sweep — the fleet pays the whole-pool simulation \
     once per design — and a live sweep saves its arena back here.  \
     Snapshots are validated against a digest of the problem and the \
     encode version; a stale or corrupt file is rejected (counter \
     store.rejects) and the run falls back to the live sweep.  The \
     MDD_SIG_STORE environment variable is the fallback.  Results are \
     identical either way."
  in
  Arg.(value & opt (some string) None & info [ "store-dir" ] ~docv:"DIR" ~doc)

let cover_budget_arg =
  let doc =
    "Node budget for the exact covering backend (branch-and-bound nodes \
     summed over the whole hitting-set loop; default 2000000).  On \
     exhaustion the run falls back to the greedy cover, counts \
     cover.budget_fallbacks and reports cover_complete=false.  The \
     MDD_COVER_BUDGET environment variable is the fallback."
  in
  Arg.(value & opt (some int) None & info [ "cover-budget" ] ~docv:"N" ~doc)

(* The MDD_NO_PRUNE / MDD_NO_CACHE / MDD_NO_BATCH / MDD_PREWARM /
   MDD_SIG_CACHE_MB / MDD_COVER / MDD_COVER_BUDGET / MDD_SIG_STORE
   environment switches are resolved here, once, into a
   [Session.config] record — nothing in lib/ reads them.  Boolean flags
   only push away from the default: leaving one off keeps the
   environment-derived setting in place, mirroring [apply_domains]. *)
let env_off name =
  match Sys.getenv_opt name with None | Some "" -> false | Some _ -> true

(* MDD_SIG_CACHE_MB fallback: positive integers only, anything else is
   ignored (same leniency the pre-session reader had). *)
let env_cache_mb () =
  match Sys.getenv_opt "MDD_SIG_CACHE_MB" with
  | None -> None
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some mb when mb >= 1 -> Some mb
    | Some _ | None -> None)

(* MDD_COVER fallback: the same names the flag accepts; anything else is
   ignored. *)
let env_cover () =
  match Sys.getenv_opt "MDD_COVER" with
  | Some "greedy" -> Some Session.Greedy
  | Some "exact" -> Some Session.Exact
  | Some _ | None -> None

let env_cover_budget () =
  match Sys.getenv_opt "MDD_COVER_BUDGET" with
  | None -> None
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

(* MDD_SIG_STORE fallback: any non-empty value is a directory path. *)
let env_store_dir () =
  match Sys.getenv_opt "MDD_SIG_STORE" with None | Some "" -> None | Some dir -> Some dir

let session_config ?(prewarm = false) ?cache_mb ?cover ?cover_budget ?store_dir
    ~no_prune ~no_cache ~no_batch ~domains () =
  let cache_mb =
    match cache_mb with
    | Some mb when mb >= 1 -> mb
    | Some _ | None -> (
      match env_cache_mb () with Some mb -> mb | None -> Sig_cache.default_budget_mb)
  in
  let cover =
    match cover with
    | Some c -> c
    | None -> (
      match env_cover () with Some c -> c | None -> Session.default_config.Session.cover)
  in
  let cover_budget =
    match cover_budget with
    | Some n when n >= 1 -> n
    | Some _ | None -> (
      match env_cover_budget () with
      | Some n -> n
      | None -> Session.default_cover_budget)
  in
  let store_dir = match store_dir with Some _ as d -> d | None -> env_store_dir () in
  {
    Session.prune = not (no_prune || env_off "MDD_NO_PRUNE");
    cache = not (no_cache || env_off "MDD_NO_CACHE");
    batch = not (no_batch || env_off "MDD_NO_BATCH");
    domains;
    cache_mb;
    prewarm = prewarm || env_off "MDD_PREWARM";
    cover;
    cover_budget;
    store_dir;
  }

(* Resolved-configuration metadata for `--stats` reports: read back from
   the config record the run actually used, never re-derived from the
   environment. *)
let config_meta (c : Session.config) =
  [
    ("prune", if c.Session.prune then "on" else "off");
    ("cache", if c.Session.cache then "on" else "off");
    ("batch", if c.Session.batch then "on" else "off");
    ( "domains",
      string_of_int
        (match c.Session.domains with
        | Some d -> d
        | None -> Parallel.default_domains ()) );
    ("cache_mb", string_of_int c.Session.cache_mb);
    ("prewarm", if c.Session.prewarm then "on" else "off");
    ("cover", match c.Session.cover with Session.Greedy -> "greedy" | Session.Exact -> "exact");
    ("store_dir", match c.Session.store_dir with Some d -> d | None -> "off");
  ]

(* Pattern source: an explicit file, or the in-repo ATPG flow. *)
let patterns_arg =
  let doc = "Read test patterns from a file (one 0/1 line per pattern)." in
  Arg.(value & opt (some file) None & info [ "patterns" ] ~docv:"FILE" ~doc)

let load_patterns net patterns_file =
  match patterns_file with
  | Some path ->
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let pats = Pattern.of_text text in
    if Pattern.npis pats <> Netlist.num_pis net then
      Error
        (Printf.sprintf "pattern width %d does not match circuit PI count %d"
           (Pattern.npis pats) (Netlist.num_pis net))
    else Ok pats
  | None -> Ok (Campaign.test_set net)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    exit 1

(* --- Run-report plumbing (the observability layer's CLI surface) ----- *)

let stats_arg =
  let doc =
    "Collect counters and phase timers for the run and emit a JSON run \
     report: to stdout with a bare $(b,--stats), to $(docv) with \
     $(b,--stats=FILE).  The $(b,MDD_STATS) environment variable does the \
     same without touching the command line: a file path writes there, \
     any other non-empty value writes to stderr."
  in
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE" ~doc)

(* Where the report goes.  The flag wins over the environment; an env
   value that is not obviously a switch is treated as a path. *)
let stats_dest stats_flag =
  match stats_flag with
  | Some "-" | Some "" -> Some `Stdout
  | Some path -> Some (`File path)
  | None -> (
    match Sys.getenv_opt "MDD_STATS" with
    | None | Some "" -> None
    | Some ("1" | "-" | "true" | "yes") -> Some `Stderr
    | Some path -> Some (`File path))

let init_stats stats_flag =
  let dest = stats_dest stats_flag in
  if dest <> None then Obs.enable ();
  dest

let emit_stats dest ~meta =
  match dest with
  | None -> ()
  | Some dest -> (
    let report = Run_report.capture ~meta () in
    match dest with
    | `Stdout -> print_string (Run_report.to_json report)
    | `Stderr -> prerr_string (Run_report.to_json report)
    | `File path -> Run_report.write ~path report)
