(* Good-machine simulation tool: apply patterns to a circuit and print
   the primary-output responses.

     dune exec bin/simulate.exe -- --circuit c17 --random 8 --seed 3
     dune exec bin/simulate.exe -- --bench my.bench --patterns pats.txt *)

open Cmdliner

let random_arg =
  let doc = "Apply $(docv) random patterns instead of the ATPG set." in
  Arg.(value & opt (some int) None & info [ "random" ] ~docv:"N" ~doc)

let exhaustive_arg =
  let doc = "Apply all input combinations (circuits with up to 20 inputs)." in
  Arg.(value & flag & info [ "exhaustive" ] ~doc)

let run bench suite patterns_file random exhaustive seed =
  let net = Cli_common.or_die (Cli_common.load_circuit bench suite) in
  let pats =
    if exhaustive then Pattern.exhaustive ~npis:(Netlist.num_pis net)
    else
      match random with
      | Some n -> Pattern.random (Rng.create seed) ~npis:(Netlist.num_pis net) ~count:n
      | None -> Cli_common.or_die (Cli_common.load_patterns net patterns_file)
  in
  Format.printf "# %a@." Netlist.pp_stats net;
  Format.printf "# inputs: %s@."
    (String.concat " " (Array.to_list (Array.map (Netlist.name net) (Netlist.pis net))));
  Format.printf "# outputs: %s@."
    (String.concat " " (Array.to_list (Array.map (Netlist.name net) (Netlist.pos net))));
  let responses = Logic_sim.responses net pats in
  for p = 0 to Pattern.count pats - 1 do
    let out =
      String.init (Netlist.num_pos net) (fun oi ->
          if Bitvec.get responses.(oi) p then '1' else '0')
    in
    Format.printf "%s -> %s@." (Pattern.to_string pats p) out
  done

let cmd =
  let doc = "simulate a gate-level circuit" in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ Cli_common.bench_arg $ Cli_common.suite_arg $ Cli_common.patterns_arg
      $ random_arg $ exhaustive_arg $ Cli_common.seed_arg)

let () = exit (Cmd.eval cmd)
