(* ATPG flow tool: generate a stuck-at test set for a circuit and report
   coverage.

     dune exec bin/atpg_tool.exe -- --circuit add8 -o patterns.txt *)

open Cmdliner

let output_arg =
  let doc = "Write the generated patterns to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let compact_arg =
  let doc = "Run reverse-order static compaction on the generated set." in
  Arg.(value & flag & info [ "compact" ] ~doc)

let backtrack_arg =
  let doc = "PODEM backtrack limit." in
  Arg.(value & opt int 512 & info [ "backtrack-limit" ] ~docv:"N" ~doc)

let run bench suite seed compact output backtrack_limit =
  let net = Cli_common.or_die (Cli_common.load_circuit bench suite) in
  Format.printf "circuit: %a@." Netlist.pp_stats net;
  let report = Tpg.generate ~seed ~backtrack_limit net in
  Format.printf "collapsed faults: %d@." report.Tpg.total_faults;
  Format.printf "detected: %d, untestable: %d, aborted: %d@." report.Tpg.detected
    report.Tpg.untestable report.Tpg.aborted;
  Format.printf "coverage: %.2f%%@." (100.0 *. report.Tpg.coverage);
  let pats =
    if compact then begin
      let c = Tpg.compact net report.Tpg.patterns in
      Format.printf "patterns: %d (compacted from %d)@." (Pattern.count c)
        (Pattern.count report.Tpg.patterns);
      c
    end
    else begin
      Format.printf "patterns: %d@." (Pattern.count report.Tpg.patterns);
      report.Tpg.patterns
    end
  in
  match output with
  | Some path ->
    let oc = open_out path in
    output_string oc (Pattern.to_text pats);
    close_out oc;
    Format.printf "wrote %s@." path
  | None -> ()

let cmd =
  let doc = "generate a stuck-at test set (random + PODEM top-off)" in
  Cmd.v
    (Cmd.info "atpg_tool" ~doc)
    Term.(
      const run $ Cli_common.bench_arg $ Cli_common.suite_arg $ Cli_common.seed_arg
      $ compact_arg $ output_arg $ backtrack_arg)

let () = exit (Cmd.eval cmd)
